//! Integration: the observability plane end to end — one traced client request
//! through a retrying gateway cluster, scraped back out through `GET /metrics`
//! (Prometheus text), `GET /trace/{id}` (JSON span tree), and `GET /healthz`.

use spatial::gateway::breaker::CircuitConfig;
use spatial::gateway::gateway::{ApiGateway, GatewayConfig, IDEMPOTENT_HEADER, TRACE_HEADER};
use spatial::gateway::http::{request, request_with_headers};
use spatial::gateway::retry::RetryPolicy;
use spatial::gateway::{Microservice, ServiceError, ServiceHost};
use std::sync::Arc;
use std::time::Duration;

/// Echoes the body back reversed — cheap, deterministic, content-checkable.
struct Reverse;

impl Microservice for Reverse {
    fn name(&self) -> &str {
        "reverse"
    }
    fn vcpus(&self) -> usize {
        2
    }
    fn handle(&self, endpoint: &str, body: &[u8]) -> Result<Vec<u8>, ServiceError> {
        if endpoint == "/flip" {
            let mut out = body.to_vec();
            out.reverse();
            Ok(out)
        } else {
            Err(ServiceError::NotFound)
        }
    }
}

fn observed_cluster() -> (ApiGateway, Vec<ServiceHost>) {
    let gw = ApiGateway::spawn_with_config(GatewayConfig {
        upstream_timeout: Duration::from_secs(2),
        circuit: CircuitConfig::default(),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
            budget: 32,
            budget_refill_per_sec: 8.0,
        },
        health: None,
    })
    .expect("gateway spawns");
    let mut hosts = Vec::new();
    for _ in 0..2 {
        let host = ServiceHost::spawn(Arc::new(Reverse), 32).expect("replica spawns");
        gw.register("reverse", host.addr());
        hosts.push(host);
    }
    (gw, hosts)
}

// Structural Prometheus exposition validation now lives in the conformance
// crate (`spatial_conformance::scrape`), shared with the fleet-rollout suite
// and the bench bins.
use spatial_conformance::assert_valid_prometheus_text;

#[test]
fn a_single_request_is_visible_in_metrics_trace_and_healthz() {
    let (gw, _hosts) = observed_cluster();

    // -- the one client request, with an explicit trace id -----------------------
    let trace_hex = "00000000000000000000000000051ace";
    let resp = request_with_headers(
        gw.addr(),
        "POST",
        "/reverse/flip",
        &[
            (TRACE_HEADER.to_string(), trace_hex.to_string()),
            (IDEMPOTENT_HEADER.to_string(), "1".to_string()),
        ],
        b"lairps",
        Duration::from_secs(5),
    )
    .expect("gateway answers");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"sprial");

    // -- GET /metrics ------------------------------------------------------------
    let metrics =
        request(gw.addr(), "GET", "/metrics", b"", Duration::from_secs(5)).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.content_type, "text/plain; version=0.0.4");
    let text = String::from_utf8(metrics.body).expect("exposition is UTF-8");
    assert_valid_prometheus_text(&text);
    assert!(text.contains("# TYPE spatial_gateway_request_duration_ms histogram"));
    assert!(
        text.contains("spatial_gateway_request_duration_ms_bucket{route=\"reverse\""),
        "request-latency buckets must be present:\n{text}"
    );
    assert!(text.contains("spatial_gateway_request_duration_ms_count{route=\"reverse\"} 1"));
    assert!(text.contains("spatial_gateway_requests_total{code=\"200\",route=\"reverse\"} 1"));
    // The resilience counters are registered up front, visible even at zero.
    for counter in [
        "spatial_gateway_retries_total",
        "spatial_gateway_breaker_opened_total",
        "spatial_gateway_deadline_exceeded_total",
    ] {
        assert!(text.contains(&format!("# TYPE {counter} counter")), "missing {counter}");
    }

    // -- GET /trace/{id} ---------------------------------------------------------
    let traced =
        request(gw.addr(), "GET", &format!("/trace/{trace_hex}"), b"", Duration::from_secs(5))
            .expect("trace endpoint answers");
    assert_eq!(traced.status, 200);
    let json = String::from_utf8(traced.body).unwrap();
    assert!(json.contains(&format!("\"trace_id\":\"{trace_hex}\"")), "{json}");
    assert!(json.contains("\"gateway /reverse\""), "root span present: {json}");
    assert!(json.contains("\"attempt\""), "attempt child span present: {json}");
    // Root + at least one attempt span.
    let span_count: usize = json
        .split("\"span_count\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("span_count field present");
    assert!(span_count >= 2, "a request produces root + attempt spans, got {span_count}");

    // -- unknown trace -----------------------------------------------------------
    let missing = request(
        gw.addr(),
        "GET",
        "/trace/000000000000000000000000deadbeef",
        b"",
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(missing.status, 404);

    // -- GET /healthz ------------------------------------------------------------
    let health =
        request(gw.addr(), "GET", "/healthz", b"", Duration::from_secs(5)).expect("healthz");
    assert_eq!(health.status, 200);
    let body = String::from_utf8(health.body).unwrap();
    assert!(body.contains("\"status\":\"ok\""), "{body}");
}

#[test]
fn metrics_accumulate_across_requests_and_stay_well_formed() {
    let (gw, _hosts) = observed_cluster();
    for _ in 0..5 {
        let resp =
            request(gw.addr(), "POST", "/reverse/flip", b"abc", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
    }
    // A 404 from the service maps to a non-200 code label.
    let resp = request(gw.addr(), "POST", "/reverse/nope", b"abc", Duration::from_secs(5)).unwrap();
    assert_ne!(resp.status, 200);

    let metrics = request(gw.addr(), "GET", "/metrics", b"", Duration::from_secs(5)).unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    assert_valid_prometheus_text(&text);
    assert!(text.contains("spatial_gateway_request_duration_ms_count{route=\"reverse\"} 6"));
    assert!(text.contains("spatial_gateway_requests_total{code=\"200\",route=\"reverse\"} 5"));
}

// ---------------------------------------------------------------------------
// ISSUE 7 acceptance: SLO burn-rate paging, exemplars, and the continuous
// profiler, end to end. A 3-replica UC1 serving fleet behind the gateway,
// mid-rollout, when a latency regression burns the error budget: the
// multi-window burn-rate page fires, the `BudgetBreach` feeds the fleet
// controller, and the ramp aborts with the epoch quarantined — the same gate
// drift uses. `/metrics` stays valid with exemplars whose trace ids resolve
// through `/trace/{id}`, and `GET /profile` attributes ≥ 90 % of the gateway's
// request wall time to named stages. Two episodes match structurally.
// ---------------------------------------------------------------------------

use spatial::data::unimib::{binarize_falls, generate, UnimibConfig};
use spatial::data::Dataset;
use spatial::fleet::{
    FleetController, FleetEvent, FleetEventKind, ReplicaHandle, RolloutConfig, ShadowEvidence,
};
use spatial::gateway::services::ServingService;
use spatial::ml::tree::DecisionTree;
use spatial::ml::{Model, ModelStore};
use spatial::telemetry::slo::{BreachSeverity, SloSpec};
use std::net::SocketAddr;

const ROUTE: &str = "serve";
const FAMILY: &str = "spatial_gateway_request_duration_ms";

fn uc1_data() -> (Dataset, Dataset) {
    let ds = binarize_falls(&generate(&UnimibConfig { samples: 400, ..UnimibConfig::default() }));
    ds.split(0.8, 42)
}

fn fit_tree(train: &Dataset) -> Arc<dyn Model> {
    let mut tree = DecisionTree::new();
    tree.fit(train).expect("fit");
    Arc::new(tree)
}

fn body_for(row: &[f64]) -> Vec<u8> {
    let coords: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("{{\"features\":[{}]}}", coords.join(",")).into_bytes()
}

struct Fleet {
    gw: ApiGateway,
    _hosts: Vec<ServiceHost>,
    addrs: Vec<SocketAddr>,
    ctl: FleetController,
}

/// Like the ISSUE 6 fleet, but every replica host attributes its handler time
/// into the gateway's continuous profiler.
fn build_fleet(train: &Dataset, clean: &Arc<dyn Model>, cfg: RolloutConfig) -> Fleet {
    let gw = ApiGateway::spawn(Duration::from_secs(5)).expect("gateway spawns");
    let mut hosts = Vec::new();
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for i in 0..3 {
        let store = Arc::new(ModelStore::with_majority_fallback(train, 8).expect("store"));
        store.promote(Arc::clone(clean), 0, 0.9, "baseline");
        let host = ServiceHost::spawn_with_profiler(
            Arc::new(ServingService::new(Arc::clone(&store), train.n_features(), 2)),
            32,
            gw.profiler(),
        )
        .expect("replica spawns");
        gw.register(ROUTE, host.addr());
        addrs.push(host.addr());
        handles.push(ReplicaHandle { name: format!("replica-{i}"), store });
        hosts.push(host);
    }
    let ctl = FleetController::new(handles, cfg).with_registry(gw.metrics_registry());
    Fleet { gw, _hosts: hosts, addrs, ctl }
}

fn apply_events(fleet: &Fleet, events: &[FleetEvent]) {
    let canary = fleet.addrs[0];
    for event in events {
        match event.kind {
            FleetEventKind::CanaryStarted | FleetEventKind::CanaryRetried => {
                assert!(fleet.gw.set_drain(ROUTE, canary, true));
            }
            FleetEventKind::EpochQuarantined
            | FleetEventKind::RampAborted
            | FleetEventKind::RampStarted => {
                assert!(fleet.gw.set_drain(ROUTE, canary, false));
            }
            FleetEventKind::CanaryRolledBack
            | FleetEventKind::ReplicaRamped
            | FleetEventKind::RolloutCompleted => {}
        }
    }
}

/// Everything the episode's outcome consists of, minus wall-clock timings —
/// what "deterministic" means for an observability run.
#[derive(Debug, PartialEq)]
struct EpisodeSummary {
    log: Vec<String>,
    statuses: Vec<u16>,
    breach: String,
    budget_after: String,
    /// Named profiler frames under the request path, sorted by `report`.
    /// Timings vary between runs; the stage structure must not.
    frames: Vec<String>,
}

/// One deterministic episode: a healthy rollout starts ramping; a latency
/// regression (modelled by tightening the SLO threshold so live traffic burns
/// budget at 20×) pages; the page aborts the ramp and quarantines the epoch.
fn slo_gated_episode() -> (EpisodeSummary, Fleet) {
    let (train, holdout) = uc1_data();
    let clean = fit_tree(&train);
    let candidate = fit_tree(&train); // identical behaviour: nothing to shadow-flag

    let cfg = RolloutConfig {
        soak_ticks: 1,
        ramp_interval: 1,
        min_shadow_samples: 8,
        ..RolloutConfig::default()
    };
    let mut fleet = build_fleet(&train, &clean, cfg);

    // Phase 1 — a healthy latency SLO: 95 % of requests under 10 s. Loopback
    // traffic never comes close, so the rollout proceeds.
    fleet.gw.install_slo(SloSpec::latency("serve-latency", FAMILY, 10_000.0, 0.95));

    let epoch =
        fleet.ctl.begin_rollout(0, candidate, 0.92, "healthy retrain").expect("rollout starts");
    assert_eq!(epoch, 1);
    apply_events(&fleet, &fleet.ctl.events().to_vec());

    let mut statuses = Vec::new();
    let evidence = ShadowEvidence { samples: 64, mismatches: 0, errors: 0 };
    let readings = vec![Vec::new(), Vec::new(), Vec::new()];
    let serve_tick = |fleet: &mut Fleet, statuses: &mut Vec<u16>, tick: u64| {
        for k in 0..20usize {
            let row = holdout.features.row(k % holdout.features.rows());
            let resp = request(
                fleet.gw.addr(),
                "POST",
                "/serve/predict",
                &body_for(row),
                Duration::from_secs(5),
            )
            .expect("client request answered");
            statuses.push(resp.status);
        }
        let breach = fleet.gw.slo_breach();
        let events = fleet.ctl.step_with_slo(tick, &readings, evidence, breach.as_ref());
        apply_events(&fleet, &events);
        breach
    };

    // Tick 1: soak completes, the ramp starts. Tick 2: one replica promotes.
    assert!(serve_tick(&mut fleet, &mut statuses, 1).is_none(), "healthy SLO must not breach");
    assert!(serve_tick(&mut fleet, &mut statuses, 2).is_none());

    // Phase 2 — the regression: every request now lands over the threshold,
    // burning budget at 1/(1-0.95) = 20× — past the 14.4× page line.
    fleet.gw.install_slo(SloSpec::latency("serve-latency", FAMILY, 0.000_001, 0.95));
    let breach = serve_tick(&mut fleet, &mut statuses, 3).expect("the regression must page");
    assert_eq!(breach.severity, BreachSeverity::Page);

    let slo_status = fleet
        .gw
        .slo_statuses()
        .into_iter()
        .find(|s| s.name == "serve-latency")
        .expect("installed SLO reports");

    let frames: Vec<String> = fleet
        .gw
        .profiler()
        .report()
        .into_iter()
        .map(|(path, _)| path)
        .filter(|p| p.starts_with("gateway.") || p.starts_with("service."))
        .collect();

    let summary = EpisodeSummary {
        log: fleet.ctl.events().iter().map(|e| e.to_string()).collect(),
        statuses,
        breach: format!(
            "{} {} burn={:.1} over {}",
            breach.slo,
            breach.severity.as_str(),
            breach.burn_rate,
            breach.window
        ),
        budget_after: format!("{:.3}", slo_status.budget_remaining),
        frames,
    };
    (summary, fleet)
}

#[test]
fn a_burn_rate_page_gates_the_ramp_like_drift() {
    let (summary, fleet) = slo_gated_episode();

    // The page aborted the ramp and quarantined the epoch — SLO burn gates
    // promotions exactly like drift.
    let kinds: Vec<FleetEventKind> = fleet.ctl.events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            FleetEventKind::CanaryStarted,
            FleetEventKind::RampStarted,
            FleetEventKind::ReplicaRamped,
            FleetEventKind::RampAborted,
            FleetEventKind::EpochQuarantined,
        ],
        "{:?}",
        summary.log
    );
    let abort = &summary.log[3];
    assert!(abort.contains("slo serve-latency page"), "abort must cite the SLO: {abort}");
    assert!(fleet.ctl.is_quarantined(1));
    assert_eq!(fleet.ctl.phase(), spatial::fleet::RolloutPhase::Idle);
    for (name, epoch) in fleet.ctl.replica_epochs() {
        assert_eq!(epoch, 0, "{name} must be back on the baseline epoch");
    }
    assert_eq!(summary.breach, "serve-latency page burn=20.0 over 1h");
    assert_eq!(summary.budget_after, "0.000", "a total regression leaves no budget");

    // Clients never saw the incident.
    assert_eq!(summary.statuses.len(), 60);
    assert!(summary.statuses.iter().all(|&s| s == 200), "non-200 in {:?}", summary.statuses);
}

#[test]
fn metrics_exemplars_and_traces_link_up() {
    let (_, fleet) = slo_gated_episode();

    // /metrics: still valid exposition, now with SLO gauges and exemplars.
    let resp =
        request(fleet.gw.addr(), "GET", "/metrics", b"", Duration::from_secs(5)).expect("metrics");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).expect("utf-8");
    assert_valid_prometheus_text(&text);
    for needle in [
        "spatial_slo_error_budget_remaining{slo=\"serve-latency\"}",
        "spatial_slo_burn_rate{slo=\"serve-latency\",window=\"5m\"}",
        "spatial_slo_burn_rate{slo=\"serve-latency\",window=\"3d\"}",
        "# {trace_id=\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }

    // /exemplars: the duration histogram's buckets carry trace links...
    let resp = request(
        fleet.gw.addr(),
        "GET",
        &format!("/exemplars/{FAMILY}"),
        b"",
        Duration::from_secs(5),
    )
    .expect("exemplars");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).expect("utf-8");
    let trace = body
        .split("\"trace_id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("at least one exemplar");
    assert_eq!(trace.len(), 32, "trace ids are 32 hex chars: {trace}");

    // ...and the linked trace resolves to its span tree.
    let resp =
        request(fleet.gw.addr(), "GET", &format!("/trace/{trace}"), b"", Duration::from_secs(5))
            .expect("trace lookup");
    assert_eq!(resp.status, 200, "exemplar trace {trace} must resolve");
}

#[test]
fn the_profile_attributes_request_time_to_named_stages() {
    let (summary, fleet) = slo_gated_episode();

    for frame in ["gateway.forward", "gateway.forward;upstream.attempt", "service.serve"] {
        assert!(
            summary.frames.iter().any(|p| p == frame),
            "missing frame {frame} in {:?}",
            summary.frames
        );
    }

    let resp =
        request(fleet.gw.addr(), "GET", "/profile", b"", Duration::from_secs(5)).expect("profile");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).expect("utf-8");
    assert!(text.contains("gateway.forward;upstream.attempt "), "{text}");

    // ≥ 90 % of request wall time lands in named child stages, so a flame
    // graph of this profile explains where requests actually went.
    let attribution = fleet.gw.profiler().attribution("gateway.forward");
    assert!(attribution >= 0.9, "only {attribution:.3} of forward time attributed to stages");
}

#[test]
fn the_slo_episode_is_deterministic_across_runs() {
    let (first, _) = slo_gated_episode();
    let (second, _) = slo_gated_episode();
    assert!(!first.log.is_empty());
    assert_eq!(first, second, "structural summaries must match across runs");
}

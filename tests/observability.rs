//! Integration: the observability plane end to end — one traced client request
//! through a retrying gateway cluster, scraped back out through `GET /metrics`
//! (Prometheus text), `GET /trace/{id}` (JSON span tree), and `GET /healthz`.

use spatial::gateway::breaker::CircuitConfig;
use spatial::gateway::gateway::{ApiGateway, GatewayConfig, IDEMPOTENT_HEADER, TRACE_HEADER};
use spatial::gateway::http::{request, request_with_headers};
use spatial::gateway::retry::RetryPolicy;
use spatial::gateway::{Microservice, ServiceError, ServiceHost};
use std::sync::Arc;
use std::time::Duration;

/// Echoes the body back reversed — cheap, deterministic, content-checkable.
struct Reverse;

impl Microservice for Reverse {
    fn name(&self) -> &str {
        "reverse"
    }
    fn vcpus(&self) -> usize {
        2
    }
    fn handle(&self, endpoint: &str, body: &[u8]) -> Result<Vec<u8>, ServiceError> {
        if endpoint == "/flip" {
            let mut out = body.to_vec();
            out.reverse();
            Ok(out)
        } else {
            Err(ServiceError::NotFound)
        }
    }
}

fn observed_cluster() -> (ApiGateway, Vec<ServiceHost>) {
    let gw = ApiGateway::spawn_with_config(GatewayConfig {
        upstream_timeout: Duration::from_secs(2),
        circuit: CircuitConfig::default(),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
            budget: 32,
            budget_refill_per_sec: 8.0,
        },
        health: None,
    })
    .expect("gateway spawns");
    let mut hosts = Vec::new();
    for _ in 0..2 {
        let host = ServiceHost::spawn(Arc::new(Reverse), 32).expect("replica spawns");
        gw.register("reverse", host.addr());
        hosts.push(host);
    }
    (gw, hosts)
}

// Structural Prometheus exposition validation now lives in the conformance
// crate (`spatial_conformance::scrape`), shared with the fleet-rollout suite
// and the bench bins.
use spatial_conformance::assert_valid_prometheus_text;

#[test]
fn a_single_request_is_visible_in_metrics_trace_and_healthz() {
    let (gw, _hosts) = observed_cluster();

    // -- the one client request, with an explicit trace id -----------------------
    let trace_hex = "00000000000000000000000000051ace";
    let resp = request_with_headers(
        gw.addr(),
        "POST",
        "/reverse/flip",
        &[
            (TRACE_HEADER.to_string(), trace_hex.to_string()),
            (IDEMPOTENT_HEADER.to_string(), "1".to_string()),
        ],
        b"lairps",
        Duration::from_secs(5),
    )
    .expect("gateway answers");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"sprial");

    // -- GET /metrics ------------------------------------------------------------
    let metrics =
        request(gw.addr(), "GET", "/metrics", b"", Duration::from_secs(5)).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.content_type, "text/plain; version=0.0.4");
    let text = String::from_utf8(metrics.body).expect("exposition is UTF-8");
    assert_valid_prometheus_text(&text);
    assert!(text.contains("# TYPE spatial_gateway_request_duration_ms histogram"));
    assert!(
        text.contains("spatial_gateway_request_duration_ms_bucket{route=\"reverse\""),
        "request-latency buckets must be present:\n{text}"
    );
    assert!(text.contains("spatial_gateway_request_duration_ms_count{route=\"reverse\"} 1"));
    assert!(text.contains("spatial_gateway_requests_total{code=\"200\",route=\"reverse\"} 1"));
    // The resilience counters are registered up front, visible even at zero.
    for counter in [
        "spatial_gateway_retries_total",
        "spatial_gateway_breaker_opened_total",
        "spatial_gateway_deadline_exceeded_total",
    ] {
        assert!(text.contains(&format!("# TYPE {counter} counter")), "missing {counter}");
    }

    // -- GET /trace/{id} ---------------------------------------------------------
    let traced =
        request(gw.addr(), "GET", &format!("/trace/{trace_hex}"), b"", Duration::from_secs(5))
            .expect("trace endpoint answers");
    assert_eq!(traced.status, 200);
    let json = String::from_utf8(traced.body).unwrap();
    assert!(json.contains(&format!("\"trace_id\":\"{trace_hex}\"")), "{json}");
    assert!(json.contains("\"gateway /reverse\""), "root span present: {json}");
    assert!(json.contains("\"attempt\""), "attempt child span present: {json}");
    // Root + at least one attempt span.
    let span_count: usize = json
        .split("\"span_count\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("span_count field present");
    assert!(span_count >= 2, "a request produces root + attempt spans, got {span_count}");

    // -- unknown trace -----------------------------------------------------------
    let missing = request(
        gw.addr(),
        "GET",
        "/trace/000000000000000000000000deadbeef",
        b"",
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(missing.status, 404);

    // -- GET /healthz ------------------------------------------------------------
    let health =
        request(gw.addr(), "GET", "/healthz", b"", Duration::from_secs(5)).expect("healthz");
    assert_eq!(health.status, 200);
    let body = String::from_utf8(health.body).unwrap();
    assert!(body.contains("\"status\":\"ok\""), "{body}");
}

#[test]
fn metrics_accumulate_across_requests_and_stay_well_formed() {
    let (gw, _hosts) = observed_cluster();
    for _ in 0..5 {
        let resp =
            request(gw.addr(), "POST", "/reverse/flip", b"abc", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
    }
    // A 404 from the service maps to a non-200 code label.
    let resp = request(gw.addr(), "POST", "/reverse/nope", b"abc", Duration::from_secs(5)).unwrap();
    assert_ne!(resp.status, 200);

    let metrics = request(gw.addr(), "GET", "/metrics", b"", Duration::from_secs(5)).unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    assert_valid_prometheus_text(&text);
    assert!(text.contains("spatial_gateway_request_duration_ms_count{route=\"reverse\"} 6"));
    assert!(text.contains("spatial_gateway_requests_total{code=\"200\",route=\"reverse\"} 5"));
}

//! Integration: the observability plane end to end — one traced client request
//! through a retrying gateway cluster, scraped back out through `GET /metrics`
//! (Prometheus text), `GET /trace/{id}` (JSON span tree), and `GET /healthz`.

use spatial::gateway::breaker::CircuitConfig;
use spatial::gateway::gateway::{ApiGateway, GatewayConfig, IDEMPOTENT_HEADER, TRACE_HEADER};
use spatial::gateway::http::{request, request_with_headers};
use spatial::gateway::retry::RetryPolicy;
use spatial::gateway::{Microservice, ServiceError, ServiceHost};
use std::sync::Arc;
use std::time::Duration;

/// Echoes the body back reversed — cheap, deterministic, content-checkable.
struct Reverse;

impl Microservice for Reverse {
    fn name(&self) -> &str {
        "reverse"
    }
    fn vcpus(&self) -> usize {
        2
    }
    fn handle(&self, endpoint: &str, body: &[u8]) -> Result<Vec<u8>, ServiceError> {
        if endpoint == "/flip" {
            let mut out = body.to_vec();
            out.reverse();
            Ok(out)
        } else {
            Err(ServiceError::NotFound)
        }
    }
}

fn observed_cluster() -> (ApiGateway, Vec<ServiceHost>) {
    let gw = ApiGateway::spawn_with_config(GatewayConfig {
        upstream_timeout: Duration::from_secs(2),
        circuit: CircuitConfig::default(),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
            budget: 32,
            budget_refill_per_sec: 8.0,
        },
        health: None,
    })
    .expect("gateway spawns");
    let mut hosts = Vec::new();
    for _ in 0..2 {
        let host = ServiceHost::spawn(Arc::new(Reverse), 32).expect("replica spawns");
        gw.register("reverse", host.addr());
        hosts.push(host);
    }
    (gw, hosts)
}

/// Structural validation of Prometheus text exposition: every non-comment line is
/// `name{labels} value` with a parsable float, metric names are legal, and each
/// histogram series' cumulative buckets are monotonically non-decreasing.
fn assert_valid_prometheus_text(text: &str) {
    // Last seen cumulative count per (bucket-series minus its `le` label).
    let mut bucket_watermarks: std::collections::HashMap<String, u64> =
        std::collections::HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with("# ") {
            continue;
        }
        // Split on the *last* space: label values may contain escaped spaces.
        let idx = line.rfind(' ').unwrap_or_else(|| panic!("unparsable sample line: {line}"));
        let (series, value) = (&line[..idx], &line[idx + 1..]);
        let value: f64 =
            value.parse().unwrap_or_else(|_| panic!("sample value must be a float: {line}"));
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in line: {line}"
        );
        if name.ends_with("_bucket") {
            // Identify the series by everything except the `le="..."` label.
            let key = match series.find("le=\"") {
                Some(i) => {
                    let close =
                        series[i + 4..].find('"').map(|j| i + 5 + j).unwrap_or(series.len());
                    format!("{}{}", &series[..i], &series[close..])
                }
                None => series.to_string(),
            };
            let count = value as u64;
            if let Some(prev) = bucket_watermarks.get(&key) {
                assert!(
                    count >= *prev,
                    "cumulative buckets must be monotone: {line} after count {prev}"
                );
            }
            bucket_watermarks.insert(key, count);
        }
    }
}

#[test]
fn a_single_request_is_visible_in_metrics_trace_and_healthz() {
    let (gw, _hosts) = observed_cluster();

    // -- the one client request, with an explicit trace id -----------------------
    let trace_hex = "00000000000000000000000000051ace";
    let resp = request_with_headers(
        gw.addr(),
        "POST",
        "/reverse/flip",
        &[
            (TRACE_HEADER.to_string(), trace_hex.to_string()),
            (IDEMPOTENT_HEADER.to_string(), "1".to_string()),
        ],
        b"lairps",
        Duration::from_secs(5),
    )
    .expect("gateway answers");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"sprial");

    // -- GET /metrics ------------------------------------------------------------
    let metrics =
        request(gw.addr(), "GET", "/metrics", b"", Duration::from_secs(5)).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.content_type, "text/plain; version=0.0.4");
    let text = String::from_utf8(metrics.body).expect("exposition is UTF-8");
    assert_valid_prometheus_text(&text);
    assert!(text.contains("# TYPE spatial_gateway_request_duration_ms histogram"));
    assert!(
        text.contains("spatial_gateway_request_duration_ms_bucket{route=\"reverse\""),
        "request-latency buckets must be present:\n{text}"
    );
    assert!(text.contains("spatial_gateway_request_duration_ms_count{route=\"reverse\"} 1"));
    assert!(text.contains("spatial_gateway_requests_total{code=\"200\",route=\"reverse\"} 1"));
    // The resilience counters are registered up front, visible even at zero.
    for counter in [
        "spatial_gateway_retries_total",
        "spatial_gateway_breaker_opened_total",
        "spatial_gateway_deadline_exceeded_total",
    ] {
        assert!(text.contains(&format!("# TYPE {counter} counter")), "missing {counter}");
    }

    // -- GET /trace/{id} ---------------------------------------------------------
    let traced =
        request(gw.addr(), "GET", &format!("/trace/{trace_hex}"), b"", Duration::from_secs(5))
            .expect("trace endpoint answers");
    assert_eq!(traced.status, 200);
    let json = String::from_utf8(traced.body).unwrap();
    assert!(json.contains(&format!("\"trace_id\":\"{trace_hex}\"")), "{json}");
    assert!(json.contains("\"gateway /reverse\""), "root span present: {json}");
    assert!(json.contains("\"attempt\""), "attempt child span present: {json}");
    // Root + at least one attempt span.
    let span_count: usize = json
        .split("\"span_count\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("span_count field present");
    assert!(span_count >= 2, "a request produces root + attempt spans, got {span_count}");

    // -- unknown trace -----------------------------------------------------------
    let missing = request(
        gw.addr(),
        "GET",
        "/trace/000000000000000000000000deadbeef",
        b"",
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(missing.status, 404);

    // -- GET /healthz ------------------------------------------------------------
    let health =
        request(gw.addr(), "GET", "/healthz", b"", Duration::from_secs(5)).expect("healthz");
    assert_eq!(health.status, 200);
    let body = String::from_utf8(health.body).unwrap();
    assert!(body.contains("\"status\":\"ok\""), "{body}");
}

#[test]
fn metrics_accumulate_across_requests_and_stay_well_formed() {
    let (gw, _hosts) = observed_cluster();
    for _ in 0..5 {
        let resp =
            request(gw.addr(), "POST", "/reverse/flip", b"abc", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
    }
    // A 404 from the service maps to a non-200 code label.
    let resp = request(gw.addr(), "POST", "/reverse/nope", b"abc", Duration::from_secs(5)).unwrap();
    assert_ne!(resp.status, 200);

    let metrics = request(gw.addr(), "GET", "/metrics", b"", Duration::from_secs(5)).unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    assert_valid_prometheus_text(&text);
    assert!(text.contains("spatial_gateway_request_duration_ms_count{route=\"reverse\"} 6"));
    assert!(text.contains("spatial_gateway_requests_total{code=\"200\",route=\"reverse\"} 5"));
}

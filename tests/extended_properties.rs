//! Integration: the extension sensors (privacy, fairness, resilience) and adaptive
//! weights in one monitored deployment — full property coverage end-to-end.

use spatial::core::adapt::{AdaptConfig, WeightAdapter};
use spatial::core::monitor::Monitor;
use spatial::core::property::TrustProperty;
use spatial::core::registry::SensorRegistry;
use spatial::core::sensor::SensorContext;
use spatial::core::trust::{aggregate, TrustWeights};
use spatial::data::unimib::{binarize_falls, generate, UnimibConfig};
use spatial::ml::forest::RandomForest;
use spatial::ml::Model;

#[test]
fn extended_registry_quantifies_every_property_on_a_real_deployment() {
    let raw = binarize_falls(&generate(&UnimibConfig { samples: 500, ..UnimibConfig::default() }));
    let (train, test) = raw.split(0.8, 3);
    let mut model = RandomForest::with_trees(15);
    model.fit(&train).unwrap();

    let mut monitor = Monitor::new(SensorRegistry::extended(1, 0));
    let ctx = SensorContext { model: &model, train: &train, test: &test };
    let (readings, alerts, failures) = monitor.observe(&ctx);
    assert!(failures.is_empty(), "all sensors must measure: {failures:?}");
    assert!(alerts.is_empty(), "first round is the baseline");

    // Every property has at least one reading, and all readings are finite.
    for p in TrustProperty::ALL {
        assert!(readings.iter().any(|r| r.property == p), "property {p} unquantified");
    }
    assert!(readings.iter().all(|r| r.value.is_finite()));

    let trust = aggregate(&readings, &TrustWeights::default());
    assert!(trust.overall > 0.5, "healthy deployment: {}", trust.overall);
    assert_eq!(trust.per_property.len(), TrustProperty::ALL.len());
}

#[test]
fn adaptive_weights_follow_alerts_through_the_monitor() {
    let raw = binarize_falls(&generate(&UnimibConfig { samples: 400, ..UnimibConfig::default() }));
    let (train, test) = raw.split(0.8, 5);
    let registry = SensorRegistry::standard(1);
    let mut monitor = Monitor::new(SensorRegistry::standard(1));
    // One clean round anchors the baseline; the next round must already alert.
    monitor.set_baseline_window(1);
    let mut adapter = WeightAdapter::new(TrustWeights::default(), AdaptConfig::default());

    // Baseline round with a good model.
    let mut good = RandomForest::with_trees(15);
    good.fit(&train).unwrap();
    let ctx = SensorContext { model: &good, train: &train, test: &test };
    let (_, alerts, _) = monitor.observe(&ctx);
    adapter.observe_round(&alerts, &registry);
    let before = adapter.multiplier(TrustProperty::Performance);

    // Degraded round: heavy poisoning drives performance alerts.
    let poisoned = spatial::attacks::label_flip::random_label_flip(&train, 0.45, 11).dataset;
    let mut bad = RandomForest::with_trees(15);
    bad.fit(&poisoned).unwrap();
    let ctx2 = SensorContext { model: &bad, train: &poisoned, test: &test };
    let (_, alerts, _) = monitor.observe(&ctx2);
    assert!(!alerts.is_empty(), "heavy poisoning must alert");
    let weights = adapter.observe_round(&alerts, &registry);
    assert!(
        adapter.multiplier(TrustProperty::Performance) > before,
        "alerting property must gain attention"
    );
    assert!(weights.get(TrustProperty::Performance) > 1.0);
}

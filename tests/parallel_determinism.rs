//! Integration: the determinism contract of the parallel compute layer.
//!
//! Random-forest training, KernelSHAP and LIME must produce byte-identical
//! results at 1, 2 and 8 threads — parallelism is an implementation detail the
//! numbers are not allowed to observe. The comparisons use `f64::to_bits`, not
//! tolerances: any reordering of a floating-point reduction would fail here.

use spatial::data::unimib::{binarize_falls, generate, UnimibConfig};
use spatial::ml::forest::RandomForest;
use spatial::ml::Model;
use spatial::xai::lime::{LimeConfig, LimeTabular};
use spatial::xai::shap::{KernelShap, ShapConfig};

const THREADS: [usize; 3] = [1, 2, 8];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` once per thread count and asserts every run reproduces the first.
fn identical_at_every_thread_count<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let pool = spatial::parallel::global();
    let reference = pool.scoped_threads(THREADS[0], &f);
    for &t in &THREADS[1..] {
        let run = pool.scoped_threads(t, &f);
        assert!(run == reference, "output at {t} threads differs from {} threads", THREADS[0]);
    }
}

fn splits() -> (spatial::data::Dataset, spatial::data::Dataset) {
    let raw = binarize_falls(&generate(&UnimibConfig { samples: 320, ..UnimibConfig::default() }));
    raw.split(0.8, 11)
}

#[test]
fn forest_training_is_identical_across_thread_counts() {
    let (train, test) = splits();
    identical_at_every_thread_count(|| {
        let mut rf = RandomForest::with_trees(12);
        rf.fit(&train).unwrap();
        let probs = rf.predict_proba_batch(&test.features);
        (rf.tree_count(), bits(probs.as_slice()))
    });
}

#[test]
fn kernel_shap_is_identical_across_thread_counts() {
    let (train, test) = splits();
    let mut rf = RandomForest::with_trees(10);
    rf.fit(&train).unwrap();
    let config = ShapConfig { n_coalitions: 96, background_limit: 6, ..ShapConfig::default() };
    identical_at_every_thread_count(|| {
        let shap =
            KernelShap::new(&rf, &train.features, train.feature_names.clone(), config.clone());
        test.features
            .iter_rows()
            .take(4)
            .map(|row| bits(&shap.explain(row, 1).values))
            .collect::<Vec<_>>()
    });
}

#[test]
fn lime_is_identical_across_thread_counts() {
    let (train, test) = splits();
    let mut rf = RandomForest::with_trees(10);
    rf.fit(&train).unwrap();
    let config = LimeConfig { n_samples: 128, ..LimeConfig::default() };
    identical_at_every_thread_count(|| {
        let lime =
            LimeTabular::new(&rf, &train.features, train.feature_names.clone(), config.clone());
        let e = lime.explain(test.features.row(0), 1);
        (bits(&e.values), e.base_value.to_bits())
    });
}

#[test]
fn scoped_threads_restores_the_pool_width() {
    let pool = spatial::parallel::global();
    let before = pool.threads();
    let seen = pool.scoped_threads(3, || pool.threads());
    assert_eq!(seen, 3);
    assert_eq!(pool.threads(), before);
}
